// Package hypar is the public API of this reproduction of "HyPar:
// Towards Hybrid Parallelism for Deep Learning Accelerator Array"
// (Song et al., HPCA 2019).
//
// HyPar trains a deep neural network on an array of 2^H HMC-based
// accelerators and must decide, for every weighted layer at every level
// of the array hierarchy, between data parallelism (shard the batch,
// replicate the kernel) and model parallelism (shard the kernel,
// aggregate output partial sums). The package computes the
// communication-minimizing hybrid partition with a linear-time
// layer-wise dynamic program applied level by level, and evaluates
// partitions on an event-driven simulator of the HMC + Eyeriss-style
// row-stationary + H-tree/torus architecture.
//
// Typical use:
//
//	m, _ := hypar.ModelByName("VGG-A")
//	res, _ := hypar.Run(m, hypar.HyPar, hypar.DefaultConfig())
//	fmt.Println(res.Plan.LayerString(0), res.Stats.StepSeconds)
//
// or compare against the published baselines:
//
//	cmp, _ := hypar.Compare(m, hypar.DefaultConfig())
//	fmt.Println(cmp.PerformanceGain(hypar.HyPar)) // normalized to DP
package hypar

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/platform"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// ErrConfig reports an invalid top-level configuration.
var ErrConfig = errors.New("hypar: invalid config")

// Re-exported core types, so downstream users interact with one import.
type (
	// Model is a feed-forward DNN description (see nn.Model).
	Model = nn.Model
	// Input is the geometry of one training sample.
	Input = nn.Input
	// Layer is one weighted layer with folded pooling/activation.
	Layer = nn.Layer
	// LayerType distinguishes convolutional from fully-connected layers.
	LayerType = nn.LayerType
	// Plan is a hierarchical parallelism assignment with its
	// communication volumes.
	Plan = partition.Plan
	// Stats is the simulated outcome of one training step.
	Stats = sim.Stats
	// Arch is the simulated hardware platform.
	Arch = sim.Arch
	// Platform bundles an accelerator platform's cost models (compute,
	// memory/energy, interconnect, partition weights). See Platforms for
	// the registered names.
	Platform = platform.Platform
)

// Platform selection helpers.
var (
	// Platforms lists the registered accelerator platform names, sorted
	// ("hmc", "gpu-hbm", "tpu-systolic" by default).
	Platforms = platform.Names
	// PlatformByName resolves a registered platform by its wire name.
	PlatformByName = platform.ByName
)

// DefaultPlatform is the platform an empty Config.Platform means: the
// paper's HMC-based array. It aliases platform.DefaultName — the single
// place the empty-name fallback is defined.
const DefaultPlatform = platform.DefaultName

// Layer kind constants for hand-built models.
const (
	// Conv marks a convolutional layer.
	Conv = nn.Conv
	// FC marks a fully-connected layer.
	FC = nn.FC
)

// JoinOp selects how a multi-input layer of a branched (DAG) model
// combines its producers' feature maps (see nn.JoinOp): channel/vector
// concatenation or the residual element-wise add.
type JoinOp = nn.JoinOp

// Join operators for hand-built branched models.
const (
	// JoinConcat concatenates producer feature maps — along channels
	// for a convolutional consumer, along the flattened vector for a
	// fully-connected one. The default for multi-input layers.
	JoinConcat = nn.Concat
	// JoinAdd element-wise adds identically shaped producer maps (the
	// residual skip connection).
	JoinAdd = nn.Add
)

// InputName is the reserved Layer.Inputs reference naming the model
// input tensor in branched models.
const InputName = nn.InputName

// DType is the element type tensors are accounted in.
type DType = tensor.DType

// Float32 is the paper's 32-bit floating-point precision.
const Float32 = tensor.Float32

// Layer constructors for hand-built models.
var (
	// ConvLayer builds a stride-1 convolution.
	ConvLayer = nn.ConvLayer
	// ConvPoolLayer builds a stride-1 convolution with max pooling.
	ConvPoolLayer = nn.ConvPoolLayer
	// FCLayer builds a fully-connected layer.
	FCLayer = nn.FCLayer
)

// Model zoo passthroughs (the paper's ten evaluation networks plus the
// branched workloads).
var (
	// Zoo returns the ten networks of the evaluation (Figure 5 order).
	Zoo = nn.Zoo
	// BranchedZoo returns the branched (DAG) workload networks — the
	// residual SRES-8 and the two-branch inception-style Incep-2. They
	// are kept out of Zoo so the paper's figures stay exactly the
	// paper's.
	BranchedZoo = nn.BranchedZoo
	// ModelByName looks a network up by name across Zoo and
	// BranchedZoo, e.g. "VGG-A" or "SRES-8".
	ModelByName = nn.ByName
)

// Strategy selects how the parallelism assignment is produced.
type Strategy int

const (
	// HyPar runs the hierarchical dynamic-programming partition search
	// (the paper's contribution).
	HyPar Strategy = iota
	// DataParallel assigns data parallelism everywhere (the default
	// baseline all results are normalized to).
	DataParallel
	// ModelParallel assigns model parallelism everywhere.
	ModelParallel
	// OneWeirdTrick assigns dp to conv layers and mp to fc layers at
	// every level (Krizhevsky's empirical configuration [111]).
	OneWeirdTrick
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case HyPar:
		return "HyPar"
	case DataParallel:
		return "DataParallel"
	case ModelParallel:
		return "ModelParallel"
	case OneWeirdTrick:
		return "OneWeirdTrick"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy resolves a strategy from its wire spelling. Accepted
// names (case-insensitive): "hypar", "dp"/"dataparallel",
// "mp"/"modelparallel", "trick"/"oneweirdtrick". The CLI flags and the
// hypard service both parse through here.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(name) {
	case "hypar":
		return HyPar, nil
	case "dp", "dataparallel":
		return DataParallel, nil
	case "mp", "modelparallel":
		return ModelParallel, nil
	case "trick", "oneweirdtrick":
		return OneWeirdTrick, nil
	default:
		return 0, fmt.Errorf("%w: unknown strategy %q (hypar, dp, mp, trick)", ErrConfig, name)
	}
}

// MarshalJSON renders the strategy by name.
func (s Strategy) MarshalJSON() ([]byte, error) {
	switch s {
	case HyPar, DataParallel, ModelParallel, OneWeirdTrick:
		return json.Marshal(s.String())
	default:
		return nil, fmt.Errorf("%w: unknown strategy %v", ErrConfig, s)
	}
}

// UnmarshalJSON parses a strategy name (ParseStrategy spellings).
func (s *Strategy) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return fmt.Errorf("%w: strategy: %v", ErrConfig, err)
	}
	parsed, err := ParseStrategy(name)
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// Strategies lists all supported strategies in report order.
var Strategies = []Strategy{ModelParallel, DataParallel, OneWeirdTrick, HyPar}

// Faults describes failed accelerator groups in the array hierarchy:
// Groups of the 2^(Level+1) sub-trees formed at hierarchy level Level
// have failed and been fenced off. Each failed group at level h removes
// 2^(H-h-1) accelerators from the 2^H array; planning and simulation
// then run over the largest power-of-two sub-array the survivors can
// host (see Config.EffectiveLevels). The zero value means a healthy
// array.
type Faults struct {
	// Level is the hierarchy level (0-based, root splits first) at
	// which whole groups have failed.
	Level int `json:"level"`
	// Groups is the number of failed groups at Level; zero means no
	// faults.
	Groups int `json:"groups"`
}

// IsZero reports whether the spec describes a healthy array. A zero
// Faults marshals to nothing under Config's omitzero tag, so healthy
// configs keep their historical canonical JSON byte for byte.
func (f Faults) IsZero() bool { return f == Faults{} }

// String renders the spec in the CLI's "level:groups" spelling.
func (f Faults) String() string {
	return fmt.Sprintf("%d:%d", f.Level, f.Groups)
}

// ParseFaults parses the CLI spelling "level:groups" (for example
// "1:2" — two failed groups at hierarchy level 1). The empty string
// means no faults.
func ParseFaults(spec string) (Faults, error) {
	if spec == "" {
		return Faults{}, nil
	}
	lvl, grp, ok := strings.Cut(spec, ":")
	if !ok {
		return Faults{}, fmt.Errorf("%w: fault spec %q (want level:groups, e.g. 1:2)", ErrConfig, spec)
	}
	l, err1 := strconv.Atoi(strings.TrimSpace(lvl))
	g, err2 := strconv.Atoi(strings.TrimSpace(grp))
	if err1 != nil || err2 != nil {
		return Faults{}, fmt.Errorf("%w: fault spec %q (want level:groups, e.g. 1:2)", ErrConfig, spec)
	}
	return Faults{Level: l, Groups: g}, nil
}

// PlatformSpec assigns a platform per hierarchy level for a
// heterogeneous array. The internal form is the comma-separated
// per-level platform names, root cut (level 0) first; an empty slot
// inherits Config.Platform. The zero value means no per-level
// assignment: the whole array runs Config.Platform, exactly the
// historical behavior. The type is a plain (comparable) string so
// Config keeps working as a map key; on the wire it marshals as an
// object keyed by level index, e.g. {"0": "gpu-hbm", "1": "hmc"}.
type PlatformSpec string

// maxSpecLevels caps per-level assignment indices at the hierarchy
// depth Config.Validate accepts, so hostile level keys cannot force
// huge allocations.
const maxSpecLevels = 20

// IsZero reports whether no per-level assignment is configured. A zero
// spec marshals to nothing under Config's omitzero tag, so
// single-platform configs keep their historical canonical JSON byte for
// byte.
func (s PlatformSpec) IsZero() bool { return s == "" }

// Names returns the per-level platform names, root cut first (empty
// slots stay empty — Canonical fills them), or nil for the zero spec.
func (s PlatformSpec) Names() []string {
	if s == "" {
		return nil
	}
	return strings.Split(string(s), ",")
}

// joinSpec builds the internal comma form from per-level names.
func joinSpec(names []string) PlatformSpec {
	return PlatformSpec(strings.Join(names, ","))
}

// ParsePlatformSpec parses the CLI spelling: comma-separated per-level
// platform names, root cut first, e.g. "gpu-hbm,hmc,hmc,hmc". An empty
// slot inherits the -platform flag; the empty string means no per-level
// assignment.
func ParsePlatformSpec(spec string) (PlatformSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return "", nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) > maxSpecLevels {
		return "", fmt.Errorf("%w: per-level platform assignment names %d levels (max %d)",
			ErrConfig, len(parts), maxSpecLevels)
	}
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return joinSpec(parts), nil
}

// MarshalJSON renders the spec as its wire object, keys in ascending
// level order (manual: Go's map marshaling sorts lexically, which
// misorders two-digit levels). Empty slots are omitted.
func (s PlatformSpec) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, n := range s.Names() {
		if n == "" {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		key, err := json.Marshal(strconv.Itoa(i))
		if err != nil {
			return nil, err
		}
		val, err := json.Marshal(n)
		if err != nil {
			return nil, err
		}
		b.Write(key)
		b.WriteByte(':')
		b.Write(val)
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// UnmarshalJSON parses the wire object {"<level>": "<platform>", ...}.
// Levels may be sparse (holes inherit Config.Platform); keys must be
// integer level indices within the supported hierarchy depth, and names
// must not contain commas (the internal separator).
func (s *PlatformSpec) UnmarshalJSON(data []byte) error {
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("%w: platforms: %v", ErrConfig, err)
	}
	if len(m) == 0 {
		*s = ""
		return nil
	}
	byLevel := make(map[int]string, len(m))
	max := -1
	for k, v := range m {
		i, err := strconv.Atoi(k)
		if err != nil || i < 0 || i >= maxSpecLevels {
			return fmt.Errorf("%w: platforms key %q (want a level index 0..%d)",
				ErrConfig, k, maxSpecLevels-1)
		}
		if strings.Contains(v, ",") {
			return fmt.Errorf("%w: platforms level %d: invalid name %q", ErrConfig, i, v)
		}
		byLevel[i] = v
		if i > max {
			max = i
		}
	}
	names := make([]string, max+1)
	for i, v := range byLevel {
		names[i] = v
	}
	*s = joinSpec(names)
	return nil
}

// Config selects the workload and platform parameters.
type Config struct {
	// Batch is the mini-batch size (paper default: 256).
	Batch int `json:"batch"`
	// Levels is the hierarchy depth H; the array has 2^H accelerators
	// (paper default: 4 → 16 accelerators).
	Levels int `json:"levels"`
	// Platform names the accelerator platform: "hmc" (paper default,
	// empty means hmc), "gpu-hbm" or "tpu-systolic" — see Platforms.
	Platform string `json:"platform,omitempty"`
	// Platforms optionally assigns a platform per hierarchy level for a
	// heterogeneous array, e.g. {"0": "gpu-hbm", "1": "hmc"} — level 0
	// is the root cut, and the deepest level's platform is the node
	// platform doing the compute. Missing levels inherit Platform. An
	// assignment naming one platform everywhere canonicalizes to the
	// plain Platform form, so single-platform configs (and their request
	// hashes) are unchanged. Where adjacent levels differ, transfers
	// crossing the upper cut pay an explicit protocol-conversion charge.
	Platforms PlatformSpec `json:"platforms,omitzero"`
	// Topology is the interconnect: "htree", "torus" or "ideal". Empty
	// means the platform's native default (htree for hmc, torus for
	// gpu-hbm and tpu-systolic).
	Topology string `json:"topology,omitempty"`
	// LinkMbps is the NoC link bandwidth in Mb/s. Zero means the
	// platform's native default (1600 for hmc, 200000 for gpu-hbm,
	// 496000 for tpu-systolic).
	LinkMbps float64 `json:"linkMbps,omitempty"`
	// OverlapGradComm enables the communication-hiding runtime
	// ablation (off by default, matching the paper's phase-serial
	// simulator).
	OverlapGradComm bool `json:"overlapGradComm,omitempty"`
	// Precision selects the element width: "fp32" (paper default,
	// empty means fp32), "fp16" or "int8" for precision ablations.
	Precision string `json:"precision,omitempty"`
	// Faults marks failed accelerator groups; the zero value (default)
	// is a healthy array and is omitted from the canonical JSON, so
	// fault-free configs hash identically to historical ones.
	Faults Faults `json:"faults,omitzero"`
	// SearchMethod selects the partition search algorithm for the HyPar
	// strategy: "" or "hierarchical" (also "graph") is the exact
	// per-level DP, "brute" the exhaustive reference, "beam" the
	// bounded-width beam search that plans graphs too wide for the exact
	// DP's frontier. The empty default is omitted from the canonical
	// JSON, so existing configs hash identically.
	SearchMethod string `json:"searchMethod,omitempty"`
	// BeamWidth bounds the beam search's kept states per layer
	// (searchMethod "beam" only; zero canonicalizes to the default
	// width, and any width is cleared under non-beam methods).
	BeamWidth int `json:"beamWidth,omitempty"`
}

// Canonical normalizes the configuration to its canonical equivalent:
// the empty precision becomes the explicit "fp32" it means, the empty
// platform becomes "hmc", and an empty topology or zero link bandwidth
// resolves to the named platform's native default. A per-level platform
// assignment canonicalizes too: holes inherit Platform, and an
// assignment naming one platform at every level collapses to the plain
// single-platform form it means. Two configs with identical semantics
// therefore marshal to identical JSON — the property the hypard request
// hash relies on. An unknown platform name (or a structurally invalid
// per-level assignment) is left untouched for Validate to reject.
func (c Config) Canonical() Config {
	if c.Precision == "" {
		c.Precision = "fp32"
	}
	c = c.canonicalSearch()
	if !c.Platforms.IsZero() {
		return c.canonicalPlatforms()
	}
	if c.Platform == "" {
		c.Platform = DefaultPlatform
	}
	if p, err := platform.ByName(c.Platform); err == nil {
		if c.Topology == "" {
			c.Topology = p.Topologies()[0]
		}
		if c.LinkMbps == 0 {
			c.LinkMbps = p.DefaultLinkMbps()
		}
	}
	return c
}

// maxBeamWidth bounds the beam width a config may request; each state
// holds a full assignment prefix, so an unbounded width would let one
// request allocate arbitrary memory.
const maxBeamWidth = 1 << 16

// canonicalSearch normalizes the search-method fields: method names
// fold to lower case, the aliases of the default exact search
// ("hierarchical", "graph") collapse to the empty string it means (so
// spelling the default explicitly hashes identically to omitting it),
// a beam request with zero width becomes the explicit default width,
// and a width under any non-beam method is dropped (it is meaningless
// there). Unknown method names are left untouched for Validate to
// reject.
func (c Config) canonicalSearch() Config {
	switch strings.ToLower(c.SearchMethod) {
	case "", "hierarchical", "graph":
		c.SearchMethod = ""
		c.BeamWidth = 0
	case "brute":
		c.SearchMethod = "brute"
		c.BeamWidth = 0
	case "beam":
		c.SearchMethod = "beam"
		if c.BeamWidth == 0 {
			c.BeamWidth = partition.DefaultBeamWidth
		}
	}
	return c
}

// canonicalPlatforms normalizes a per-level platform assignment: holes
// inherit Platform (default hmc), an all-equal assignment collapses to
// the historical single-platform form (byte-identical canonical JSON,
// so every existing request hash is preserved), and a genuinely mixed
// one keeps the full explicit spec with Platform cleared and
// Topology/LinkMbps left as given (zero means each level's native
// default). A structurally invalid spec — wrong length or unknown
// platform — leaves the config untouched so Validate rejects the
// original spelling.
func (c Config) canonicalPlatforms() Config {
	names := c.Platforms.Names()
	if len(names) > c.Levels {
		return c
	}
	// A sparse spec names only its shallowest levels; the deeper ones
	// are holes inheriting Platform, like any other hole.
	for len(names) < c.Levels {
		names = append(names, "")
	}
	fallback := platform.CanonicalName(c.Platform)
	uniform := true
	for i := range names {
		if names[i] == "" {
			names[i] = fallback
		}
		if _, err := platform.ByName(names[i]); err != nil {
			return c
		}
		if names[i] != names[0] {
			uniform = false
		}
	}
	if uniform {
		c.Platform = names[0]
		c.Platforms = ""
		return c.Canonical()
	}
	c.Platform = ""
	c.Platforms = joinSpec(names)
	return c
}

// DefaultConfig returns the paper's evaluation workload — batch 256,
// sixteen accelerators in four hierarchy levels — with the platform
// fields left to their Canonical defaults: the hmc platform on its
// native H-tree at 1600 Mb/s. Leaving Topology and LinkMbps unset
// matters: setting Platform on the returned config selects that
// platform's native fabric instead of silently keeping the HMC's
// 1600 Mb/s H-tree.
func DefaultConfig() Config {
	return Config{Batch: 256, Levels: 4}
}

// Validate checks the configuration. Empty platform/topology and zero
// link bandwidth are valid: they mean the Canonical defaults.
func (c Config) Validate() error {
	c = c.Canonical()
	if c.Batch <= 0 {
		return fmt.Errorf("%w: batch %d", ErrConfig, c.Batch)
	}
	if c.Levels < 0 || c.Levels > maxSpecLevels {
		return fmt.Errorf("%w: levels %d", ErrConfig, c.Levels)
	}
	if _, err := partition.ParseMethod(c.SearchMethod); err != nil {
		return fmt.Errorf("%w: unknown search method %q (want hierarchical, graph, brute or beam)",
			ErrConfig, c.SearchMethod)
	}
	if c.BeamWidth < 0 || c.BeamWidth > maxBeamWidth {
		return fmt.Errorf("%w: beam width %d (want 0..%d)", ErrConfig, c.BeamWidth, maxBeamWidth)
	}
	if !c.Platforms.IsZero() {
		if err := c.validatePlatforms(); err != nil {
			return err
		}
	} else {
		p, err := platform.ByName(c.Platform)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrConfig, err)
		}
		if c.LinkMbps <= 0 {
			return fmt.Errorf("%w: link bandwidth %g Mb/s", ErrConfig, c.LinkMbps)
		}
		if !topologySupported(p, c.Topology) {
			return fmt.Errorf("%w: platform %q does not support topology %q (supported: %v)",
				ErrConfig, c.Platform, c.Topology, p.Topologies())
		}
	}
	if _, err := c.dtype(); err != nil {
		return err
	}
	if !c.Faults.IsZero() {
		if c.Faults.Groups < 0 {
			return fmt.Errorf("%w: %d failed groups", ErrConfig, c.Faults.Groups)
		}
		if c.Faults.Level < 0 || c.Faults.Level >= c.Levels {
			return fmt.Errorf("%w: fault level %d outside hierarchy of %d levels",
				ErrConfig, c.Faults.Level, c.Levels)
		}
		if groups := 1 << uint(c.Faults.Level+1); c.Faults.Groups >= groups {
			return fmt.Errorf("%w: %d failed groups at level %d, but only %d groups exist (the whole array would be gone)",
				ErrConfig, c.Faults.Groups, c.Faults.Level, groups)
		}
	}
	return nil
}

// topologySupported reports whether the platform supports the named
// interconnect.
func topologySupported(p Platform, name string) bool {
	for _, t := range p.Topologies() {
		if t == name {
			return true
		}
	}
	return false
}

// validatePlatforms checks a (canonicalized) per-level platform
// assignment: it must name exactly one registered platform per
// hierarchy level, an explicit topology must be supported by every
// level's platform, and an explicit link bandwidth must be positive
// (zero means each level's native default).
func (c Config) validatePlatforms() error {
	names := c.Platforms.Names()
	if len(names) != c.Levels {
		return fmt.Errorf("%w: per-level platform assignment covers %d levels, hierarchy has %d",
			ErrConfig, len(names), c.Levels)
	}
	for h, n := range names {
		p, err := platform.ByName(platform.CanonicalName(n))
		if err != nil {
			return fmt.Errorf("%w: level %d: %v", ErrConfig, h, err)
		}
		if c.Topology != "" && !topologySupported(p, c.Topology) {
			return fmt.Errorf("%w: level %d platform %q does not support topology %q (supported: %v)",
				ErrConfig, h, p.Name(), c.Topology, p.Topologies())
		}
	}
	if c.LinkMbps < 0 {
		return fmt.Errorf("%w: link bandwidth %g Mb/s", ErrConfig, c.LinkMbps)
	}
	return nil
}

// FailedAccelerators returns how many of the 2^Levels accelerators the
// fault spec removes: each failed group at level h fences off a
// sub-tree of 2^(Levels-h-1) accelerators.
func (c Config) FailedAccelerators() int {
	if c.Faults.IsZero() {
		return 0
	}
	return c.Faults.Groups << uint(c.Levels-c.Faults.Level-1)
}

// SurvivingAccelerators returns how many accelerators remain healthy
// under the fault spec (2^Levels for a healthy array).
func (c Config) SurvivingAccelerators() int {
	return (1 << uint(c.Levels)) - c.FailedAccelerators()
}

// EffectiveLevels returns the hierarchy depth planning and simulation
// actually run at: Levels for a healthy array, and for a degraded one
// the depth of the largest full power-of-two sub-array the survivors
// can host (floor(log2(survivors))). The planner replans over that
// sub-array rather than an irregular topology, matching the paper's
// 2^H structural assumption.
func (c Config) EffectiveLevels() int {
	if c.Faults.IsZero() {
		return c.Levels
	}
	s := c.SurvivingAccelerators()
	if s <= 1 {
		return 0
	}
	return bits.Len(uint(s)) - 1
}

// DegradedGroups returns the surviving group count G at the fault level
// and the depth of each group's intact sub-array (group size 2^depth).
// Zero groups for a healthy array. When G is not a power of two, the
// survivors hold more accelerators than the largest aligned sub-array
// EffectiveLevels snaps to — Evaluator.RunCtx exploits that with
// group-level data parallelism across all G groups.
func (c Config) DegradedGroups() (groups, depth int) {
	if c.Faults.IsZero() {
		return 0, 0
	}
	return (1 << uint(c.Faults.Level+1)) - c.Faults.Groups, c.Levels - c.Faults.Level - 1
}

// dtype resolves the configured precision.
func (c Config) dtype() (tensor.DType, error) {
	switch c.Precision {
	case "", "fp32":
		return tensor.Float32, nil
	case "fp16":
		return tensor.Float16, nil
	case "int8":
		return tensor.Int8, nil
	default:
		return tensor.Float32, fmt.Errorf("%w: unknown precision %q (fp32, fp16, int8)", ErrConfig, c.Precision)
	}
}

// DType resolves the configured precision to the tensor element type.
func (c Config) DType() (DType, error) { return c.dtype() }

// PlatformFor resolves the configuration's accelerator platform
// (applying the Canonical default for an empty name) through the
// registry's single resolution path. For a heterogeneous per-level
// assignment it returns the node platform — the deepest level's, the
// one whose accelerators do the compute; use AssignmentFor for the full
// per-level view.
func PlatformFor(c Config) (Platform, error) {
	if !c.Platforms.IsZero() {
		a, err := AssignmentFor(c)
		if err != nil {
			return nil, err
		}
		return a.Node(), nil
	}
	p, err := platform.Resolve(c.Platform)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return p, nil
}

// AssignmentFor resolves the configuration's per-level platform
// assignment at the depth planning actually runs at (EffectiveLevels:
// a degraded array keeps the deepest surviving levels, platforms
// included). A config without a Platforms spec yields the uniform
// assignment of its single platform.
func AssignmentFor(c Config) (platform.Assignment, error) {
	c = c.Canonical()
	if c.Platforms.IsZero() {
		p, err := platform.Resolve(c.Platform)
		if err != nil {
			return platform.Assignment{}, fmt.Errorf("%w: %v", ErrConfig, err)
		}
		a, err := platform.UniformAssignment(p, c.EffectiveLevels())
		if err != nil {
			return platform.Assignment{}, fmt.Errorf("%w: %v", ErrConfig, err)
		}
		return a, nil
	}
	names := c.Platforms.Names()
	if len(names) != c.Levels {
		return platform.Assignment{}, fmt.Errorf("%w: per-level platform assignment covers %d levels, hierarchy has %d",
			ErrConfig, len(names), c.Levels)
	}
	per := make([]platform.Platform, len(names))
	for h, n := range names {
		p, err := platform.ByName(platform.CanonicalName(n))
		if err != nil {
			return platform.Assignment{}, fmt.Errorf("%w: level %d: %v", ErrConfig, h, err)
		}
		per[h] = p
	}
	a, err := platform.NewAssignment(per)
	if err != nil {
		return platform.Assignment{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	tail, err := a.Tail(c.EffectiveLevels())
	if err != nil {
		return platform.Assignment{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	return tail, nil
}

// BuildArch materializes the simulated platform for the configuration.
func BuildArch(c Config) (Arch, error) {
	if err := c.Validate(); err != nil {
		return Arch{}, err
	}
	c = c.Canonical()
	dt, err := c.dtype()
	if err != nil {
		return Arch{}, err
	}
	if !c.Platforms.IsZero() {
		// Heterogeneous array: per-level fabrics with boundary-adapter
		// charges, per-level link energy models, node platform compute.
		a, err := AssignmentFor(c)
		if err != nil {
			return Arch{}, err
		}
		topo, err := a.NewTopology(c.Topology, c.LinkMbps)
		if err != nil {
			return Arch{}, err
		}
		return Arch{
			Mem:             a.Node().Memory(),
			Comp:            a.Node().Compute(),
			NoC:             topo,
			DType:           dt,
			OverlapGradComm: c.OverlapGradComm,
			LevelMems:       a.LevelMemories(),
		}, nil
	}
	p, err := PlatformFor(c)
	if err != nil {
		return Arch{}, err
	}
	topo, err := p.NewTopology(c.Topology, c.EffectiveLevels(), c.LinkMbps)
	if err != nil {
		return Arch{}, err
	}
	return Arch{
		Mem:             p.Memory(),
		Comp:            p.Compute(),
		NoC:             topo,
		DType:           dt,
		OverlapGradComm: c.OverlapGradComm,
	}, nil
}

// NewPlan produces the parallelism assignment for the model under the
// given strategy and configuration. The partition search and the plan's
// recorded transfer volumes run under the configured platform's cost
// weights, so the DP objective and the simulated schedule agree. With a
// fault spec configured, the plan covers the degraded array's
// EffectiveLevels-deep surviving sub-array.
func NewPlan(m *Model, s Strategy, c Config) (*Plan, error) {
	return NewPlanCtx(nil, m, s, c)
}

// NewPlanCtx is NewPlan with cancellation: the partition search checks
// ctx between DP layers and inside its enumeration loops, returning
// ctx.Err() promptly when the context ends. A nil ctx never cancels.
func NewPlanCtx(ctx context.Context, m *Model, s Strategy, c Config) (*Plan, error) {
	return NewPlanOpts(ctx, m, s, c, PlanOptions{})
}

// PlanOptions carries per-call planning hints that are deliberately
// not part of Config: they change how a plan is computed, never which
// plan is correct, so they stay out of the canonical request hash.
type PlanOptions struct {
	// Warm seeds the HyPar partition search with a previous plan
	// (partition.Request.Warm): hierarchy levels whose search inputs
	// are unchanged are reused instead of re-solved, which is what
	// makes one-dimension sweeps incremental. Byte-identical output
	// either way; baselines ignore it. Nil means a cold solve.
	Warm *Plan
	// FrontierCap caps the exact graph DP's frontier width for this
	// call only (0 = the package default). See
	// partition.Request.FrontierCap.
	FrontierCap int
}

// NewPlanOpts is NewPlanCtx with per-call options. The HyPar strategy
// dispatches on Config.SearchMethod — exact hierarchical DP (default),
// exhaustive brute force, or bounded-width beam search — through the
// partition package's unified Solve core.
func NewPlanOpts(ctx context.Context, m *Model, s Strategy, c Config, opt PlanOptions) (*Plan, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cc := c.Canonical()
	method, err := partition.ParseMethod(cc.SearchMethod)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	solve := func(ws []partition.Weights) (*Plan, error) {
		return partition.Solve(partition.Request{
			Model:       m,
			Batch:       c.Batch,
			Levels:      ws,
			Ctx:         ctx,
			Method:      method,
			BeamWidth:   cc.BeamWidth,
			FrontierCap: opt.FrontierCap,
			Warm:        opt.Warm,
		})
	}
	if !cc.Platforms.IsZero() {
		// Heterogeneous array: the level-h run of Algorithm 1 minimizes
		// level h's own platform weights.
		a, err := AssignmentFor(c)
		if err != nil {
			return nil, err
		}
		ws := a.PartitionWeights()
		switch s {
		case HyPar:
			return solve(ws)
		case DataParallel:
			return partition.DataParallelPerLevel(m, c.Batch, ws)
		case ModelParallel:
			return partition.ModelParallelPerLevel(m, c.Batch, ws)
		case OneWeirdTrick:
			return partition.OneWeirdTrickPerLevel(m, c.Batch, ws)
		default:
			return nil, fmt.Errorf("%w: unknown strategy %v", ErrConfig, s)
		}
	}
	p, err := PlatformFor(c)
	if err != nil {
		return nil, err
	}
	w := p.PartitionWeights()
	levels := c.EffectiveLevels()
	switch s {
	case HyPar:
		ws := make([]partition.Weights, levels)
		for h := range ws {
			ws[h] = w
		}
		return solve(ws)
	case DataParallel:
		return partition.DataParallelWeighted(m, c.Batch, levels, w)
	case ModelParallel:
		return partition.ModelParallelWeighted(m, c.Batch, levels, w)
	case OneWeirdTrick:
		return partition.OneWeirdTrickWeighted(m, c.Batch, levels, w)
	default:
		return nil, fmt.Errorf("%w: unknown strategy %v", ErrConfig, s)
	}
}

// NewInferencePlan runs the partition search with the inference cost
// model (§3.3): no gradients, no backward errors. The optimum is pure
// Data Parallelism with zero communication — exposed so users can
// verify that property and plan inference-only deployments.
func NewInferencePlan(m *Model, c Config) (*Plan, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return partition.HierarchicalInference(m, c.Batch, c.EffectiveLevels())
}

// Result pairs a plan with its simulated training-step statistics.
type Result struct {
	Strategy Strategy
	Plan     *Plan
	Stats    *Stats
	// DegradedGroups is non-zero when a degraded evaluation ran as
	// group-level data parallelism across a non-power-of-two survivor
	// set instead of snapping to the largest aligned sub-array: the
	// number of surviving groups the batch was split across. Plan then
	// describes one group's sub-array partition.
	DegradedGroups int
}

// Run plans and simulates one training step.
func Run(m *Model, s Strategy, c Config) (*Result, error) {
	return NewEvaluator().Run(m, s, c)
}

// Evaluator amortizes evaluation state across Run calls: it reuses one
// simulation engine (task slab and all) and caches the materialized
// Arch per Config, so sweeps that evaluate many plans stop rebuilding
// both. It also keeps each model's latest HyPar plan as a warm-start
// hint, so a sweep that mutates one dimension (bandwidth, platform,
// batch) re-solves only the hierarchy levels the mutation actually
// touches — level reuse is fingerprint-guarded (partition.Request.Warm)
// and byte-identical, so caching across different Configs is safe. An
// Evaluator is not safe for concurrent use — fan-outs give each worker
// its own (see runner.MapWith).
type Evaluator struct {
	sim   *sim.Simulator
	archs map[Config]Arch
	warm  map[string]*Plan
}

// NewEvaluator returns an empty Evaluator.
func NewEvaluator() *Evaluator {
	return &Evaluator{sim: sim.NewSimulator(), archs: make(map[Config]Arch), warm: make(map[string]*Plan)}
}

// Arch returns the simulated platform for the configuration, cached.
func (e *Evaluator) Arch(c Config) (Arch, error) {
	if arch, ok := e.archs[c]; ok {
		return arch, nil
	}
	arch, err := BuildArch(c)
	if err != nil {
		return Arch{}, err
	}
	e.archs[c] = arch
	return arch, nil
}

// Run plans and simulates one training step on the reusable engine.
func (e *Evaluator) Run(m *Model, s Strategy, c Config) (*Result, error) {
	return e.RunCtx(nil, m, s, c)
}

// RunCtx is Run with cancellation threaded into the partition search
// (see NewPlanCtx). A nil ctx never cancels.
//
// With a fault spec whose surviving group count is not a power of two,
// the aligned sub-array EffectiveLevels snaps to strands part of the
// surviving hardware (Faults{1,1} on 16 accelerators leaves 12
// survivors, but an aligned plan uses only 8). RunCtx additionally evaluates
// the grouped candidate — every surviving group running the sub-array
// plan on a batch shard, gradients allreduced across groups — and
// returns whichever step is faster, so degraded slowdowns can only
// improve over the aligned snap.
func (e *Evaluator) RunCtx(ctx context.Context, m *Model, s Strategy, c Config) (*Result, error) {
	var opt PlanOptions
	if s == HyPar {
		opt.Warm = e.warm[m.Name]
	}
	plan, err := NewPlanOpts(ctx, m, s, c, opt)
	if err != nil {
		return nil, err
	}
	if s == HyPar {
		e.warm[m.Name] = plan
	}
	res, err := e.Simulate(m, s, plan, c)
	if err != nil {
		return nil, err
	}
	if g, _ := c.DegradedGroups(); g > 1 && g&(g-1) != 0 {
		alt, aerr := e.runGrouped(ctx, m, s, c, g)
		if aerr != nil {
			// The grouped candidate is an optimization: its failure
			// never fails the aligned evaluation — except a canceled
			// context, which must keep its promptness contract.
			if ctx != nil && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return res, nil
		}
		if alt.Stats.StepSeconds < res.Stats.StepSeconds {
			return alt, nil
		}
	}
	return res, nil
}

// runGrouped evaluates the non-power-of-two degraded candidate: all G
// surviving groups (each an intact 2^depth sub-array) run group-level
// data parallelism — the batch splits evenly across groups, each group
// plans and simulates its shard at the group depth, and the full weight
// gradients allreduce across groups over the healthy fabric after every
// step. The allreduce is charged conservatively: ceil(log2(G)) pairwise
// full-gradient exchanges, each through the tree cut nearest the fault
// level and then progressively higher cuts — the recursive-halving
// schedule an irregular group count cannot beat.
func (e *Evaluator) runGrouped(ctx context.Context, m *Model, s Strategy, c Config, groups int) (*Result, error) {
	_, depth := c.DegradedGroups()
	sub := c
	sub.Faults = Faults{}
	sub.Levels = depth
	sub.Batch = (c.Batch + groups - 1) / groups
	if names := c.Canonical().Platforms.Names(); len(names) >= depth {
		// Each surviving group is an intact bottom-of-hierarchy
		// sub-array: it keeps the deepest depth levels' platforms.
		sub.Platforms = joinSpec(names[len(names)-depth:])
	}
	if err := sub.Validate(); err != nil {
		return nil, err
	}
	plan, err := NewPlanCtx(ctx, m, s, sub)
	if err != nil {
		return nil, err
	}
	res, err := e.Simulate(m, s, plan, sub)
	if err != nil {
		return nil, err
	}

	// Cross-group gradient traffic rides the healthy array's fabric:
	// the surviving groups sit under the physical topology's upper
	// cuts, failed subtrees notwithstanding.
	healthy := c
	healthy.Faults = Faults{}
	arch, err := e.Arch(healthy)
	if err != nil {
		return nil, err
	}
	weightElems, err := m.Params(c.Batch)
	if err != nil {
		return nil, err
	}

	st := *res.Stats
	// Re-home the group-internal communication onto the physical level
	// it runs at: group-internal cut i is healthy cut Faults.Level+1+i.
	comm := make([]float64, c.Levels)
	for i, v := range res.Stats.CommSeconds {
		if li := c.Faults.Level + 1 + i; li < len(comm) {
			comm[li] += v
		}
	}
	// Group results aggregate across G concurrent groups: times stay
	// (groups run in parallel), array-wide totals scale.
	g := float64(groups)
	st.EnergyCompute *= g
	st.EnergySRAM *= g
	st.EnergyDRAM *= g
	st.EnergyLink *= g
	st.DRAMBytes *= g
	st.CommBytes *= g
	st.Tasks *= groups

	// The allreduce: both directions of a full-gradient exchange per
	// round (the simulator's 2× pair counting).
	bytes := 2 * float64(weightElems) * float64(arch.DType.Size())
	rounds := bits.Len(uint(groups - 1)) // ceil(log2(G))
	for r := 0; r < rounds; r++ {
		h := c.Faults.Level - r
		if h < 0 {
			h = 0
		}
		tt, err := arch.NoC.TransferTime(h, bytes)
		if err != nil {
			return nil, err
		}
		linkBytes, err := arch.NoC.LinkBytes(h, bytes)
		if err != nil {
			return nil, err
		}
		st.StepSeconds += tt
		comm[h] += tt
		st.CommBytes += bytes
		st.EnergyLink += arch.LevelMem(h).LinkEnergy(linkBytes)
	}
	st.CommSeconds = comm
	return &Result{Strategy: s, Plan: plan, Stats: &st, DegradedGroups: groups}, nil
}

// Simulate evaluates an already-computed plan under the configuration.
func (e *Evaluator) Simulate(m *Model, s Strategy, plan *Plan, c Config) (*Result, error) {
	arch, err := e.Arch(c)
	if err != nil {
		return nil, err
	}
	stats, err := e.sim.Simulate(m, plan, arch)
	if err != nil {
		return nil, err
	}
	return &Result{Strategy: s, Plan: plan, Stats: stats}, nil
}

// Compare runs every strategy on the model with the reusable engine,
// serially. For the parallel fan-out use the package-level Compare.
func (e *Evaluator) Compare(m *Model, c Config) (*Comparison, error) {
	cmp := &Comparison{Model: m.Name, Results: make(map[Strategy]*Result, len(Strategies))}
	for _, s := range Strategies {
		r, err := e.Run(m, s, c)
		if err != nil {
			return nil, fmt.Errorf("strategy %v: %w", s, err)
		}
		cmp.Results[s] = r
	}
	return cmp, nil
}

// Comparison holds one Result per strategy for one model and config.
type Comparison struct {
	Model   string
	Results map[Strategy]*Result
}

// Compare runs every strategy on the model, fanning out over the
// default runner pool. Each strategy's evaluation is independent and
// deterministic, so the result is identical at any pool width.
func Compare(m *Model, c Config) (*Comparison, error) {
	results, err := runner.MapWith(runner.Default(), Strategies, NewEvaluator,
		func(ev *Evaluator, _ int, s Strategy) (*Result, error) {
			r, err := ev.Run(m, s, c)
			if err != nil {
				return nil, fmt.Errorf("strategy %v: %w", s, err)
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{Model: m.Name, Results: make(map[Strategy]*Result, len(Strategies))}
	for i, s := range Strategies {
		cmp.Results[s] = results[i]
	}
	return cmp, nil
}

// PerformanceGain returns the strategy's speedup over the Data
// Parallelism baseline (Figure 6's normalization).
func (c *Comparison) PerformanceGain(s Strategy) float64 {
	dp, ok1 := c.Results[DataParallel]
	r, ok2 := c.Results[s]
	if !ok1 || !ok2 || r.Stats.StepSeconds == 0 {
		return 0
	}
	return dp.Stats.StepSeconds / r.Stats.StepSeconds
}

// EnergyEfficiency returns the strategy's energy saving over the Data
// Parallelism baseline (Figure 7's normalization).
func (c *Comparison) EnergyEfficiency(s Strategy) float64 {
	dp, ok1 := c.Results[DataParallel]
	r, ok2 := c.Results[s]
	if !ok1 || !ok2 || r.Stats.EnergyTotal() == 0 {
		return 0
	}
	return dp.Stats.EnergyTotal() / r.Stats.EnergyTotal()
}

// PlatformComparison holds one full strategy Comparison per platform
// for one model: the cross-platform view of how the partition DP's
// dp/mp choices and the resulting gains shift with the backend.
type PlatformComparison struct {
	Model string
	// Names lists the compared platforms in request order.
	Names []string
	// ByPlatform maps each platform name to its strategy comparison.
	ByPlatform map[string]*Comparison
}

// ComparePlatforms runs the full strategy comparison on every named
// platform (all registered platforms when names is empty). Each
// platform is evaluated at its native topology and link bandwidth: the
// config's Topology and LinkMbps are reset to the platform defaults so
// the comparison contrasts whole platforms, not one fabric transplanted
// across them. Batch, levels, precision and the overlap ablation carry
// over unchanged.
func ComparePlatforms(m *Model, c Config, names ...string) (*PlatformComparison, error) {
	if len(names) == 0 {
		names = Platforms()
	}
	cfgs := make([]Config, len(names))
	for i, name := range names {
		pc := c
		pc.Platform = name
		pc.Platforms = ""
		pc.Topology = ""
		pc.LinkMbps = 0
		pc = pc.Canonical()
		if err := pc.Validate(); err != nil {
			return nil, fmt.Errorf("platform %q: %w", name, err)
		}
		cfgs[i] = pc
	}
	cmps, err := runner.Map(runner.Default(), cfgs, func(i int, pc Config) (*Comparison, error) {
		cmp, err := NewEvaluator().Compare(m, pc)
		if err != nil {
			return nil, fmt.Errorf("platform %q: %w", names[i], err)
		}
		return cmp, nil
	})
	if err != nil {
		return nil, err
	}
	out := &PlatformComparison{
		Model:      m.Name,
		Names:      append([]string(nil), names...),
		ByPlatform: make(map[string]*Comparison, len(names)),
	}
	for i, name := range names {
		out.ByPlatform[name] = cmps[i]
	}
	return out, nil
}

// DegradedComparison contrasts one model's strategies on the healthy
// array against the same array with the configured fault spec applied:
// the replan-and-report view of losing accelerator groups mid-fleet.
type DegradedComparison struct {
	Model string
	// Faults is the applied fault spec.
	Faults Faults
	// Accelerators is the healthy array size (2^Levels).
	Accelerators int
	// Survivors is how many accelerators remain under Faults.
	Survivors int
	// DegradedLevels is the hierarchy depth the degraded plan runs at
	// (EffectiveLevels of the faulted config).
	DegradedLevels int
	// Healthy holds the strategy comparison on the fault-free array.
	Healthy *Comparison
	// Degraded holds the strategy comparison on the surviving sub-array.
	Degraded *Comparison
}

// Slowdown returns how much slower the strategy's training step runs on
// the degraded array than on the healthy one (degraded step time over
// healthy step time; 0 when either result is missing).
func (d *DegradedComparison) Slowdown(s Strategy) float64 {
	h, ok1 := d.Healthy.Results[s]
	g, ok2 := d.Degraded.Results[s]
	if !ok1 || !ok2 || h.Stats.StepSeconds == 0 {
		return 0
	}
	return g.Stats.StepSeconds / h.Stats.StepSeconds
}

// CompareDegraded evaluates every strategy on the healthy array and on
// the degraded one described by c.Faults (which must be non-zero),
// fanning both comparisons out over the default runner pool. The
// healthy side runs the identical config with the fault spec cleared,
// so the pair isolates exactly the cost of the lost groups.
func CompareDegraded(m *Model, c Config) (*DegradedComparison, error) {
	c = c.Canonical()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Faults.IsZero() {
		return nil, fmt.Errorf("%w: CompareDegraded needs a non-zero fault spec", ErrConfig)
	}
	healthy := c
	healthy.Faults = Faults{}
	cfgs := []Config{healthy, c}
	cmps, err := runner.Map(runner.Default(), cfgs, func(_ int, cc Config) (*Comparison, error) {
		return NewEvaluator().Compare(m, cc)
	})
	if err != nil {
		return nil, err
	}
	return &DegradedComparison{
		Model:          m.Name,
		Faults:         c.Faults,
		Accelerators:   1 << uint(c.Levels),
		Survivors:      c.SurvivingAccelerators(),
		DegradedLevels: c.EffectiveLevels(),
		Healthy:        cmps[0],
		Degraded:       cmps[1],
	}, nil
}

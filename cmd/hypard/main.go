// Command hypard serves the HyPar evaluation library over HTTP/JSON: a
// long-running daemon exposing planning (/v1/plan), simulation
// (/v1/evaluate), strategy comparison (/v1/compare), degraded-array
// replanning (/v1/degrade), streamed parallelism-space sweeps
// (/v1/explore NDJSON), batched evaluation (/v1/batch) and
// asynchronous sweep jobs (/v1/jobs), with request coalescing, a
// sharded bounded result cache and a config-keyed session cache in
// front of one shared evaluator. Per-request deadlines (-timeout) and
// admission control (-inflight) keep an overloaded daemon responsive:
// shed work answers 429/503 with Retry-After, exceeded deadlines
// answer 504. See docs/API.md for the request schema, the error
// semantics and curl examples.
//
// Usage:
//
//	hypard -addr :8080
//	hypard -addr :8080 -workers 4 -cache 512 -batch 256 -levels 4
//	hypard -addr :8080 -jobs 128 -sessions 64
//	hypard -addr :8080 -timeout 30s -inflight 64
//	hypard -addr :8081 -self http://h1:8081 -peers http://h1:8081,http://h2:8082
//
// In cluster mode (-self/-peers) each canonical request hash is owned
// by exactly one replica via a consistent-hash ring; non-owners fill
// from the owner over /peer/v1/fetch, so the fleet's caches add instead
// of duplicating and coalescing works fleet-wide. Validate the topology
// first with `hypardctl validate`.
//
// SIGINT/SIGTERM drain in-flight requests — NDJSON streams and async
// jobs included — and exit cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	hypar "repro"
	"repro/internal/runner"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "hypard:", err)
		os.Exit(1)
	}
}

// run parses flags, binds the listener and serves until SIGINT/SIGTERM
// (or, in tests, until the stop func handed to ready is called). Split
// from main for testing.
func run(args []string, w io.Writer, ready func(addr string, stop func())) error {
	fs := flag.NewFlagSet("hypard", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		workers  = fs.Int("workers", 0, "worker pool width (0 = GOMAXPROCS)")
		cache    = fs.Int("cache", service.DefaultCacheEntries, "result cache entries (negative disables)")
		rawBytes = fs.Int("rawcache", service.DefaultRawCacheBytes, "raw-bytes fast-path budget in bytes (negative disables)")
		sessions = fs.Int("sessions", service.DefaultSessionEntries, "cached non-base-config sessions (negative disables reuse)")
		jobs     = fs.Int("jobs", service.DefaultJobEntries, "async job table entries (negative disables /v1/jobs)")
		batch    = fs.Int("batch", 256, "default mini-batch size")
		levels   = fs.Int("levels", 4, "default hierarchy depth H (2^H accelerators)")
		plat     = fs.String("platform", "hmc", "default platform: hmc | gpu-hbm | tpu-systolic")
		platsPer = fs.String("platforms-per-level", "", `default heterogeneous array: platform per hierarchy level, comma-separated root first, e.g. "gpu-hbm,hmc,hmc,hmc" (empty slots inherit -platform)`)
		topology = fs.String("topology", "", "default topology: htree | torus | ideal (empty: the platform's native fabric)")
		link     = fs.Float64("link", 0, "default NoC link bandwidth, Mb/s (0: the platform's native rate)")
		faults   = fs.String("faults", "", `default degraded-array fault spec, "level:groups" (e.g. 1:2)`)
		search   = fs.String("search", "", "default partition search: hierarchical (exact) | brute | beam")
		beamW    = fs.Int("beam-width", 0, "default beam search width (0 = 64; only with -search beam)")
		timeout  = fs.Duration("timeout", 0, "per-request evaluation deadline (0 = none); exceeded requests answer 504")
		inflight = fs.Int("inflight", 0, "max concurrent evaluations before shedding 429 (0 = 8x pool width, negative = unlimited)")
		drain    = fs.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		self     = fs.String("self", "", `this replica's peer URL, e.g. "http://10.0.0.1:8080" (cluster mode; requires -peers)`)
		peers    = fs.String("peers", "", "comma-separated peer URLs of the whole fleet, including -self (cluster mode)")
		vnodes   = fs.Int("vnodes", 0, "consistent-hash virtual nodes per replica (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := hypar.Config{
		Batch: *batch, Levels: *levels, Platform: *plat, Topology: *topology, LinkMbps: *link,
		SearchMethod: *search, BeamWidth: *beamW,
	}
	if *platsPer != "" {
		spec, err := hypar.ParsePlatformSpec(*platsPer)
		if err != nil {
			return err
		}
		cfg.Platforms = spec
	}
	if *faults != "" {
		f, err := hypar.ParseFaults(*faults)
		if err != nil {
			return err
		}
		cfg.Faults = f
	}

	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}

	pool := runner.New(*workers)
	srv, err := service.New(service.Options{
		Config:         cfg,
		Pool:           pool,
		CacheEntries:   *cache,
		RawCacheBytes:  *rawBytes,
		SessionEntries: *sessions,
		JobEntries:     *jobs,
		RequestTimeout: *timeout,
		MaxInflight:    *inflight,
		Self:           *self,
		Peers:          peerList,
		VNodes:         *vnodes,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "hypard: listening on %s (pool width %d, cache %d entries)\n",
		ln.Addr(), pool.Width(), *cache)

	stop := make(chan struct{})
	var stopOnce sync.Once
	requestStop := func() { stopOnce.Do(func() { close(stop) }) }
	if ready != nil {
		ready(ln.Addr().String(), requestStop)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		go func() {
			s := <-sig
			log.Printf("hypard: received %v, draining", s)
			requestStop()
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-stop:
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return <-errCh
	}
}

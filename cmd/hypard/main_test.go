package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeAndShutdown boots the daemon on an ephemeral port, exercises
// the endpoints over real HTTP, and drains it cleanly.
func TestServeAndShutdown(t *testing.T) {
	type readyInfo struct {
		addr string
		stop func()
	}
	readyCh := make(chan readyInfo, 1)
	errCh := make(chan error, 1)
	var out strings.Builder
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1"}, &out,
			func(addr string, stop func()) { readyCh <- readyInfo{addr: addr, stop: stop} })
	}()

	var ri readyInfo
	select {
	case ri = <-readyCh:
	case err := <-errCh:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + ri.addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["status"] != "ok" {
		t.Fatalf("healthz: %v", hz)
	}

	pr, err := http.Post(base+"/v1/plan", "application/json",
		strings.NewReader(`{"zoo":"Lenet-c"}`))
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	body, _ := io.ReadAll(pr.Body)
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d: %s", pr.StatusCode, body)
	}
	if !strings.Contains(string(body), `"model":"Lenet-c"`) {
		t.Errorf("plan body: %s", body)
	}

	ri.stop()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never drained")
	}
	if !strings.Contains(out.String(), "listening on") {
		t.Errorf("startup banner missing: %q", out.String())
	}
}

// TestBadFlags rejects an invalid base config at startup.
func TestBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-topology", "mesh"}, &out, nil); err == nil {
		t.Fatal("invalid topology accepted")
	}
	if err := run([]string{"-batch", "-3"}, &out, nil); err == nil {
		t.Fatal("invalid batch accepted")
	}
}

// TestBusyPort surfaces a bind failure instead of hanging.
func TestBusyPort(t *testing.T) {
	type readyInfo struct {
		addr string
		stop func()
	}
	readyCh := make(chan readyInfo, 1)
	errCh := make(chan error, 1)
	var out strings.Builder
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0"}, &out,
			func(addr string, stop func()) { readyCh <- readyInfo{addr, stop} })
	}()
	ri := <-readyCh
	defer func() {
		ri.stop()
		<-errCh
	}()

	var out2 strings.Builder
	if err := run([]string{"-addr", ri.addr}, &out2, nil); err == nil {
		t.Fatal("second bind on a busy port succeeded")
	} else if !strings.Contains(fmt.Sprint(err), "address already in use") {
		t.Logf("bind error (accepted): %v", err)
	}
}

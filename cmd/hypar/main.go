// Command hypar plans and simulates hybrid-parallel DNN training on an
// accelerator array, and regenerates every table and figure of the
// HyPar paper's evaluation.
//
// Usage:
//
//	hypar -experiment fig6                # regenerate one figure
//	hypar -experiment all                 # regenerate everything
//	hypar -experiment platforms           # cross-platform comparison
//	hypar -model VGG-A -strategy hypar    # plan + simulate one network
//	hypar -model AlexNet -plan            # print the partition only
//	hypar -model VGG-A -platform gpu-hbm  # simulate on another backend
//	hypar -experiment fig8 -csv           # emit CSV instead of a table
//
// With -remote the CLI turns into a batch client for a running hypard
// daemon: -model takes a comma-separated list, the models are posted
// as one /v1/batch request, and the daemon's NDJSON lines (one JSON
// result per model, in order) stream to stdout:
//
//	hypar -remote http://127.0.0.1:8080 -model VGG-A,AlexNet,Lenet-c
//
// Flags -batch, -levels, -platform, -topology, -link override the paper
// defaults (256, 4, hmc, and the platform's native fabric and link
// rate — htree at 1600 Mb/s for hmc). -platforms lists the registered
// accelerator platforms.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	hypar "repro"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hypar:", err)
		os.Exit(1)
	}
}

// run parses flags and dispatches; split from main for testing.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("hypar", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		experiment = fs.String("experiment", "", "regenerate a paper artifact: fig5..fig13, platforms, branched, degraded, hetero, beam, ablations, all")
		model      = fs.String("model", "", "zoo or branched model to plan/simulate (e.g. VGG-A, SRES-8); see -list")
		strategy   = fs.String("strategy", "hypar", "hypar | dp | mp | trick")
		planOnly   = fs.Bool("plan", false, "print the partition without simulating")
		list       = fs.Bool("list", false, "list zoo and branched (DAG) models")
		listPlat   = fs.Bool("platforms", false, "list accelerator platforms")
		csv        = fs.Bool("csv", false, "emit CSV instead of aligned text")
		batch      = fs.Int("batch", 256, "mini-batch size")
		levels     = fs.Int("levels", 4, "hierarchy depth H (2^H accelerators)")
		plat       = fs.String("platform", "hmc", "accelerator platform: hmc | gpu-hbm | tpu-systolic")
		platsPer   = fs.String("platforms-per-level", "", `heterogeneous array: platform per hierarchy level, comma-separated root first, e.g. "gpu-hbm,hmc,hmc,hmc" (empty slots inherit -platform)`)
		topology   = fs.String("topology", "", "htree | torus | ideal (default: the platform's native fabric)")
		link       = fs.Float64("link", 0, "NoC link bandwidth, Mb/s (default: the platform's native rate)")
		overlap    = fs.Bool("overlap", false, "overlap gradient communication (ablation)")
		search     = fs.String("search", "", "partition search: hierarchical (exact, default) | brute | beam")
		beamWidth  = fs.Int("beam-width", 0, "beam search width (0 = default 64; only with -search beam)")
		faults     = fs.String("faults", "", `degraded array: failed groups as "level:groups", e.g. 1:2`)
		remote     = fs.String("remote", "", "hypard base URL: evaluate -model (comma-separated list) via the daemon's /v1/batch instead of in-process")
		repeat     = fs.Int("repeat", 1, "with -remote: post the identical batch N times (later rounds replay the daemon's raw-bytes fast path; per-round timings on stderr)")
		traceFile  = fs.String("trace", "", "write a Chrome trace of the simulated step to this file")
		parallel   = fs.Bool("parallel", true, "fan experiment sweeps out over all CPUs")
		workers    = fs.Int("workers", 0, "worker pool width (0 = GOMAXPROCS; implies -parallel)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The evaluation harness fans out on the default runner pool;
	// -parallel=false pins it to one worker (the serial reference
	// path). Both widths produce bit-identical tables.
	switch {
	case *workers > 0:
		runner.SetDefaultWidth(*workers)
	case !*parallel:
		runner.SetDefaultWidth(1)
	default:
		runner.SetDefaultWidth(0)
	}

	cfg := hypar.Config{
		Batch: *batch, Levels: *levels, Platform: *plat, Topology: *topology,
		LinkMbps: *link, OverlapGradComm: *overlap,
		SearchMethod: *search, BeamWidth: *beamWidth,
	}
	if *platsPer != "" {
		spec, err := hypar.ParsePlatformSpec(*platsPer)
		if err != nil {
			return err
		}
		cfg.Platforms = spec
	}
	if *faults != "" {
		f, err := hypar.ParseFaults(*faults)
		if err != nil {
			return err
		}
		cfg.Faults = f
	}
	// Resolve the platform's native topology/link defaults up front so
	// every printout shows the explicit configuration.
	cfg = cfg.Canonical()
	emit := func(t *report.Table) error {
		if *csv {
			return t.WriteCSV(w)
		}
		if err := t.WriteText(w); err != nil {
			return err
		}
		_, err := fmt.Fprintln(w)
		return err
	}

	switch {
	case *list:
		for _, m := range hypar.Zoo() {
			fmt.Fprintf(w, "%-10s %2d weighted layers, input %dx%dx%d\n",
				m.Name, m.NumWeighted(), m.Input.H, m.Input.W, m.Input.C)
		}
		for _, m := range hypar.BranchedZoo() {
			skips, err := m.SkipEdges()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %2d weighted layers, input %dx%dx%d (DAG, %d skip edges)\n",
				m.Name, m.NumWeighted(), m.Input.H, m.Input.W, m.Input.C, skips)
		}
		return nil
	case *listPlat:
		for _, name := range hypar.Platforms() {
			p, err := hypar.PlatformByName(name)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-13s %s (topologies: %v, link %g Mb/s)\n",
				name, p.Describe(), p.Topologies(), p.DefaultLinkMbps())
		}
		return nil
	case *remote != "":
		return runRemote(*remote, *model, *strategy, *planOnly, *repeat, cfg, w)
	case *experiment != "":
		return runExperiments(strings.ToLower(*experiment), cfg, emit)
	case *model != "":
		return runModel(*model, *strategy, *planOnly, *traceFile, cfg, emit, w)
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -experiment, -model or -list")
	}
}

// runRemote is the batch client mode: it posts every named model as
// one /v1/batch request to a running hypard daemon and streams the
// NDJSON result lines (one per model, in input order) to w. planOnly
// selects the "plan" endpoint per item; otherwise items evaluate. The
// config flags ride along as each item's explicit config override.
func runRemote(base, models, strategyName string, planOnly bool, repeat int, cfg hypar.Config, w io.Writer) error {
	if models == "" {
		return fmt.Errorf("-remote needs -model (a comma-separated list of zoo models)")
	}
	endpoint := "evaluate"
	if planOnly {
		endpoint = "plan"
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return err
	}
	type item struct {
		Endpoint string          `json:"endpoint"`
		Zoo      string          `json:"zoo"`
		Strategy string          `json:"strategy"`
		Config   json.RawMessage `json:"config"`
	}
	var items []item
	for _, name := range strings.Split(models, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		items = append(items, item{Endpoint: endpoint, Zoo: name, Strategy: strategyName, Config: cfgJSON})
	}
	if len(items) == 0 {
		return fmt.Errorf("-remote: no models named in %q", models)
	}
	body, err := json.Marshal(struct {
		Items []item `json:"items"`
	}{Items: items})
	if err != nil {
		return err
	}
	if repeat < 1 {
		repeat = 1
	}
	url := strings.TrimRight(base, "/") + "/v1/batch"
	// With -repeat N the identical batch posts N times: the first round
	// computes, later rounds replay the daemon's caches (the raw-bytes
	// fast path sees the verbatim same body), and the per-round timings
	// on stderr show the warm-up. Only the last round's NDJSON goes to
	// stdout, so the output shape matches a single run.
	for round := 1; round <= repeat; round++ {
		out := io.Discard
		if round == repeat {
			out = w
		}
		t0 := time.Now()
		if err := postBatch(url, body, len(items), out); err != nil {
			return err
		}
		if repeat > 1 {
			fmt.Fprintf(os.Stderr, "hypar: round %d/%d: %s\n", round, repeat, time.Since(t0).Round(time.Microsecond))
		}
	}
	return nil
}

// postBatch posts one /v1/batch body and streams the NDJSON lines to w.
func postBatch(url string, body []byte, nItems int, w io.Writer) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("hypard: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	// Per-item failures arrive in-band as {"error":...} lines under an
	// HTTP 200 (other items still answer); stream every line through
	// but report a failed exit when any item failed, so scripts don't
	// mistake a broken batch for success.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	failed := 0
	for sc.Scan() {
		if bytes.HasPrefix(sc.Bytes(), []byte(`{"error":`)) {
			failed++
		}
		if _, err := fmt.Fprintf(w, "%s\n", sc.Bytes()); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("hypard: %d of %d batch items failed (see the error lines above)", failed, nItems)
	}
	return nil
}

// runModel plans (and unless planOnly, simulates) one network.
func runModel(name, strategyName string, planOnly bool, traceFile string, cfg hypar.Config,
	emit func(*report.Table) error, w io.Writer) error {
	m, err := hypar.ModelByName(name)
	if err != nil {
		return err
	}
	strat, err := hypar.ParseStrategy(strategyName)
	if err != nil {
		return err
	}

	plan, err := hypar.NewPlan(m, strat, cfg)
	if err != nil {
		return err
	}
	pt := report.NewTable(fmt.Sprintf("%s / %s: parallelism per layer (H1..H%d, 0=dp 1=mp)",
		m.Name, strat, cfg.EffectiveLevels()), "layer", "levels")
	for l, layer := range m.Layers {
		if err := pt.AddRow(layer.Name, plan.LayerString(l)); err != nil {
			return err
		}
	}
	if err := emit(pt); err != nil {
		return err
	}
	if planOnly {
		return nil
	}

	var res *hypar.Result
	if traceFile != "" {
		res, err = runTraced(m, strat, cfg, traceFile, w)
	} else {
		res, err = hypar.Run(m, strat, cfg)
	}
	if err != nil {
		return err
	}
	st := report.NewTable("simulated training step", "metric", "value")
	rows := []struct {
		k string
		v interface{}
	}{
		{"step time (s)", res.Stats.StepSeconds},
		{"compute busy (s)", res.Stats.ComputeSeconds},
		{"comm busy (s)", res.Stats.TotalCommSeconds()},
		{"total communication (GB)", res.Stats.CommBytes / 1e9},
		{"DRAM traffic (GB)", res.Stats.DRAMBytes / 1e9},
		{"working set per accelerator (GB)", res.Stats.PeakMemoryBytes / 1e9},
		{"fits HMC capacity", fmt.Sprintf("%v", res.Stats.FitsMemory)},
		{"energy (J)", res.Stats.EnergyTotal()},
		{"energy: compute (J)", res.Stats.EnergyCompute},
		{"energy: SRAM (J)", res.Stats.EnergySRAM},
		{"energy: DRAM (J)", res.Stats.EnergyDRAM},
		{"energy: links (J)", res.Stats.EnergyLink},
		{"scheduled tasks", res.Stats.Tasks},
	}
	for _, r := range rows {
		if err := st.AddRow(r.k, r.v); err != nil {
			return err
		}
	}
	if err := emit(st); err != nil {
		return err
	}
	if !cfg.Faults.IsZero() {
		fmt.Fprintf(w, "degraded array: fault %v leaves %d of %d accelerators (planning at depth %d)\n",
			cfg.Faults, cfg.SurvivingAccelerators(), 1<<uint(cfg.Levels), cfg.EffectiveLevels())
	}
	platName, topoName := cfg.Platform, cfg.Topology
	if !cfg.Platforms.IsZero() {
		platName = string(cfg.Platforms)
		if topoName == "" {
			topoName = "per-level native"
		}
	}
	_, err = fmt.Fprintf(w, "accelerators: %d, platform: %s, topology: %s, batch: %d\n",
		plan.NumAccelerators(), platName, topoName, cfg.Batch)
	return err
}

// runTraced simulates with trace collection and writes the Chrome
// trace plus an occupancy summary.
func runTraced(m *hypar.Model, strat hypar.Strategy, cfg hypar.Config,
	traceFile string, w io.Writer) (*hypar.Result, error) {
	plan, err := hypar.NewPlan(m, strat, cfg)
	if err != nil {
		return nil, err
	}
	arch, err := hypar.BuildArch(cfg)
	if err != nil {
		return nil, err
	}
	arch.CollectTrace = true
	stats, err := sim.Simulate(m, plan, arch)
	if err != nil {
		return nil, err
	}
	f, err := os.Create(traceFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := trace.WriteChrome(f, stats.Trace); err != nil {
		return nil, err
	}
	occ, err := trace.Summarize(stats.Trace)
	if err != nil {
		return nil, err
	}
	ot := report.NewTable("resource occupancy", "resource", "busy-s", "tasks")
	for _, o := range occ {
		name := o.Resource
		if name == "" {
			name = "(unbound)"
		}
		if err := ot.AddRow(name, o.Busy, o.Tasks); err != nil {
			return nil, err
		}
	}
	if err := ot.WriteText(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "chrome trace written to %s (%d tasks)\n\n", traceFile, len(stats.Trace))
	return &hypar.Result{Strategy: strat, Plan: plan, Stats: stats}, nil
}

// runExperiments regenerates one or all paper artifacts. All figures
// share one experiments.Session, so the zoo comparison behind Figs. 6-8
// (and the H-tree side of Fig. 12) is evaluated once, not per figure.
func runExperiments(which string, cfg hypar.Config, emit func(*report.Table) error) error {
	s := experiments.NewSession(cfg)
	type run func() (*report.Table, error)
	runners := map[string]run{
		"fig5": s.Fig5,
		"fig6": s.Fig6,
		"fig7": s.Fig7,
		"fig8": s.Fig8,
		"fig9": func() (*report.Table, error) {
			t, _, err := s.Fig9()
			return t, err
		},
		"fig10": func() (*report.Table, error) {
			t, _, err := s.Fig10()
			return t, err
		},
		"fig11": func() (*report.Table, error) {
			t, _, err := s.Fig11(6)
			return t, err
		},
		"fig12":     s.Fig12,
		"fig13":     s.Fig13,
		"platforms": s.PlatformTable,
		"branched":  s.BranchedTable,
		"degraded":  s.DegradedTable,
		"hetero":    s.HeteroTable,
		"beam":      s.BeamTable,
	}
	ablations := []run{
		func() (*report.Table, error) { return s.AblationDepth(6, "VGG-A") },
		func() (*report.Table, error) { return s.AblationTopology("VGG-A") },
		func() (*report.Table, error) { return s.AblationBatch("AlexNet") },
		func() (*report.Table, error) { return s.AblationLinkBandwidth("VGG-A") },
		func() (*report.Table, error) { return s.AblationOverlap("VGG-A") },
		func() (*report.Table, error) { return s.AblationPrecision("VGG-A") },
	}

	runOne := func(r run) error {
		t, err := r()
		if err != nil {
			return err
		}
		return emit(t)
	}

	switch which {
	case "all":
		for _, k := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "platforms", "branched", "degraded", "hetero", "beam"} {
			if err := runOne(runners[k]); err != nil {
				return fmt.Errorf("%s: %w", k, err)
			}
		}
		for i, r := range ablations {
			if err := runOne(r); err != nil {
				return fmt.Errorf("ablation %d: %w", i, err)
			}
		}
		return nil
	case "ablations":
		for i, r := range ablations {
			if err := runOne(r); err != nil {
				return fmt.Errorf("ablation %d: %w", i, err)
			}
		}
		return nil
	default:
		r, ok := runners[which]
		if !ok {
			return fmt.Errorf("unknown experiment %q (fig5..fig13, platforms, branched, degraded, hetero, beam, ablations, all)", which)
		}
		return runOne(r)
	}
}

package main

import (
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/service"
)

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	out := b.String()
	for _, want := range []string{"SFC", "SCONV", "VGG-E", "19 weighted layers"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunModelPlanOnly(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-model", "Lenet-c", "-plan"}, &b); err != nil {
		t.Fatalf("run -model -plan: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "conv1") || !strings.Contains(out, "fc2") {
		t.Errorf("plan output missing layers:\n%s", out)
	}
	if strings.Contains(out, "step time") {
		t.Error("plan-only output contains simulation results")
	}
}

func TestRunModelSimulate(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-model", "Lenet-c", "-strategy", "dp"}, &b); err != nil {
		t.Fatalf("run -model: %v", err)
	}
	out := b.String()
	for _, want := range []string{"step time", "energy (J)", "accelerators: 16"} {
		if !strings.Contains(out, want) {
			t.Errorf("simulate output missing %q:\n%s", want, out)
		}
	}
}

func TestRunStrategies(t *testing.T) {
	for _, s := range []string{"hypar", "dp", "mp", "trick"} {
		var b strings.Builder
		if err := run([]string{"-model", "SCONV", "-strategy", s, "-plan"}, &b); err != nil {
			t.Errorf("strategy %s: %v", s, err)
		}
	}
	var b strings.Builder
	if err := run([]string{"-model", "SCONV", "-strategy", "zigzag"}, &b); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRunExperimentSmall(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "fig13"}, &b); err != nil {
		t.Fatalf("run -experiment fig13: %v", err)
	}
	if !strings.Contains(b.String(), "conv5-b32-h2") {
		t.Errorf("fig13 output wrong:\n%s", b.String())
	}
}

func TestRunExperimentCSV(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-experiment", "fig13", "-csv"}, &b); err != nil {
		t.Fatalf("run -csv: %v", err)
	}
	if !strings.Contains(b.String(), "case,performance,energy-efficiency") {
		t.Errorf("CSV header missing:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-experiment", "fig99"},
		{"-model", "NotANet"},
		{"-model", "Lenet-c", "-topology", "ring"},
		{"-badflag"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunTorusTopology(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-model", "Lenet-c", "-topology", "torus"}, &b); err != nil {
		t.Fatalf("torus run: %v", err)
	}
	if !strings.Contains(b.String(), "topology: torus") {
		t.Error("torus not reported")
	}
}

func TestRunTraceFlag(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trace.json"
	var b strings.Builder
	if err := run([]string{"-model", "Lenet-c", "-trace", path}, &b); err != nil {
		t.Fatalf("run -trace: %v", err)
	}
	if !strings.Contains(b.String(), "resource occupancy") {
		t.Error("occupancy table missing")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(data)), "[") {
		t.Error("trace file is not a JSON array")
	}
	// An unwritable path fails cleanly.
	if err := run([]string{"-model", "Lenet-c", "-trace", dir + "/nope/x.json"}, &b); err == nil {
		t.Error("unwritable trace path accepted")
	}
}

// TestRunRemoteBatch drives the -remote batch client against an
// in-process hypard service: one /v1/batch POST for a comma-separated
// model list, NDJSON result lines in input order.
func TestRunRemoteBatch(t *testing.T) {
	srv, err := service.New(service.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var b strings.Builder
	if err := run([]string{"-remote", ts.URL, "-model", "Lenet-c, SFC", "-strategy", "hypar"}, &b); err != nil {
		t.Fatalf("run -remote: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 NDJSON lines, got %d:\n%s", len(lines), b.String())
	}
	if !strings.Contains(lines[0], `"model":"Lenet-c"`) || !strings.Contains(lines[1], `"model":"SFC"`) {
		t.Errorf("lines out of order or wrong models:\n%s", b.String())
	}
	for i, l := range lines {
		if !strings.Contains(l, `"stepSeconds"`) {
			t.Errorf("line %d carries no simulation stats: %s", i, l)
		}
	}

	// Plan-only remote mode selects the plan endpoint (no stats).
	var pb strings.Builder
	if err := run([]string{"-remote", ts.URL, "-model", "SFC", "-plan"}, &pb); err != nil {
		t.Fatalf("run -remote -plan: %v", err)
	}
	if strings.Contains(pb.String(), `"stats"`) {
		t.Errorf("plan-only remote output contains stats: %s", pb.String())
	}

	// Errors surface: no models, unreachable daemon.
	if err := run([]string{"-remote", ts.URL}, &pb); err == nil {
		t.Error("-remote without -model accepted")
	}
	if err := run([]string{"-remote", "http://127.0.0.1:1", "-model", "SFC"}, &pb); err == nil {
		t.Error("unreachable daemon did not error")
	}

	// Per-item failures arrive as in-band {"error":...} lines under an
	// HTTP 200; the client must still stream every line AND exit
	// non-zero so scripts see the failure.
	var fb strings.Builder
	err = run([]string{"-remote", ts.URL, "-model", "SFC,NoSuchNet"}, &fb)
	if err == nil {
		t.Error("batch with a failed item exited zero")
	} else if !strings.Contains(err.Error(), "1 of 2") {
		t.Errorf("failure count missing from error: %v", err)
	}
	flines := strings.Split(strings.TrimSpace(fb.String()), "\n")
	if len(flines) != 2 || !strings.Contains(flines[0], `"model":"SFC"`) || !strings.Contains(flines[1], `"error"`) {
		t.Errorf("failed-batch output mangled:\n%s", fb.String())
	}
}

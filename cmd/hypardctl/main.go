// Command hypardctl is the operator-side companion to hypard. Its
// validate subcommand refuses bad cluster topologies before any replica
// boots: it parses a JSON topology spec, checks it for duplicate
// endpoints, duplicate replica names, malformed addresses, ring
// geometry outside sane bounds and cache splits the service's striping
// cannot survive, then (optionally) probes every replica's /healthz in
// parallel and emits the ready-to-run hypard flag set for each replica.
//
// Usage:
//
//	hypardctl validate -f topology.json
//	hypardctl validate -f topology.json -flags
//	hypardctl validate -f topology.json -probe -probe-timeout 3s
//
// Exit status is 0 only when the topology is valid (and, with -probe,
// every replica answered /healthz), so it slots directly into boot
// scripts: `hypardctl validate -f topo.json && start-fleet`.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cluster"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hypardctl:", err)
		os.Exit(1)
	}
}

// run dispatches subcommands. Split from main for testing.
func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: hypardctl validate -f topology.json [-flags] [-probe]")
	}
	switch args[0] {
	case "validate":
		return runValidate(args[1:], w)
	default:
		return fmt.Errorf("unknown subcommand %q (supported: validate)", args[0])
	}
}

func runValidate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("hypardctl validate", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		file         = fs.String("f", "", "topology spec file (JSON); required")
		emitFlags    = fs.Bool("flags", false, "emit the ready-to-run hypard flag set per replica")
		probe        = fs.Bool("probe", false, "probe every replica's /healthz in parallel")
		probeTimeout = fs.Duration("probe-timeout", 5*time.Second, "deadline for the whole probe pass")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("validate: -f topology.json is required")
	}
	spec, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	topo, err := cluster.ParseTopology(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: valid\n", *file)
	fmt.Fprint(w, topo.Summary())

	if *emitFlags {
		for i, r := range topo.Replicas {
			fmt.Fprintf(w, "%s: hypard", r.Name)
			for _, f := range topo.Flags(i) {
				fmt.Fprintf(w, " %s", f)
			}
			fmt.Fprintln(w)
		}
	}

	if *probe {
		ctx, cancel := context.WithTimeout(context.Background(), *probeTimeout)
		defer cancel()
		unreachable := 0
		for _, res := range topo.Probe(ctx, nil) {
			if res.OK {
				fmt.Fprintf(w, "%s (%s): healthy in %s\n", res.Replica.Name, res.Replica.Addr, res.Latency.Round(time.Millisecond))
				continue
			}
			unreachable++
			fmt.Fprintf(w, "%s (%s): UNREACHABLE: %v\n", res.Replica.Name, res.Replica.Addr, res.Err)
		}
		if unreachable > 0 {
			return fmt.Errorf("probe: %d of %d replicas unreachable", unreachable, len(topo.Replicas))
		}
	}
	return nil
}

package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "topology.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunUsageAndUnknown(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Fatalf("no args: err = %v, want usage", err)
	}
	if err := run([]string{"deploy"}, &out); err == nil || !strings.Contains(err.Error(), "unknown subcommand") {
		t.Fatalf("unknown subcommand: err = %v", err)
	}
	if err := run([]string{"validate"}, &out); err == nil || !strings.Contains(err.Error(), "-f topology.json is required") {
		t.Fatalf("missing -f: err = %v", err)
	}
	if err := run([]string{"validate", "-f", filepath.Join(t.TempDir(), "absent.json")}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestValidateAcceptsAndEmitsFlags(t *testing.T) {
	path := writeSpec(t, `{
		"vnodes": 64,
		"cacheEntries": 1024,
		"replicas": [
			{"name": "a", "addr": "127.0.0.1:8081"},
			{"name": "b", "addr": "127.0.0.1:8082"},
			{"name": "c", "addr": "127.0.0.1:8083"}
		]
	}`)
	var out strings.Builder
	if err := run([]string{"validate", "-f", path, "-flags"}, &out); err != nil {
		t.Fatalf("valid topology rejected: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		": valid",
		"3 replicas, 64 virtual nodes each",
		"b: hypard -addr 127.0.0.1:8082 -self http://127.0.0.1:8082 " +
			"-peers http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 -vnodes 64 -cache 1024",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	cases := []struct {
		name, spec, want string
	}{
		{
			"duplicate endpoint",
			`{"replicas":[{"name":"a","addr":"10.0.0.1:8080"},{"name":"b","addr":"10.0.0.1:8080"}]}`,
			"duplicate endpoint",
		},
		{
			"over-capacity raw cache",
			`{"rawCacheBytes":2147483648,"replicas":[{"name":"a","addr":"10.0.0.1:8080"}]}`,
			"exceeds",
		},
		{
			"under-provisioned cache split",
			`{"cacheEntries":8,"replicas":[{"name":"a","addr":"10.0.0.1:8080"}]}`,
			"under-provisions",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			err := run([]string{"validate", "-f", writeSpec(t, tc.spec)}, &out)
			if err == nil {
				t.Fatalf("bad topology accepted:\n%s", out.String())
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q not actionable (missing %q)", err, tc.want)
			}
		})
	}
}

func TestValidateProbe(t *testing.T) {
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer healthy.Close()

	up := writeSpec(t, `{"replicas":[{"name":"up","addr":"`+strings.TrimPrefix(healthy.URL, "http://")+`"}]}`)
	var out strings.Builder
	if err := run([]string{"validate", "-f", up, "-probe"}, &out); err != nil {
		t.Fatalf("probe of healthy replica failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "up (") || !strings.Contains(out.String(), "healthy in") {
		t.Fatalf("probe output missing health line:\n%s", out.String())
	}

	down := writeSpec(t, `{"replicas":[{"name":"down","addr":"127.0.0.1:1"}]}`)
	out.Reset()
	err := run([]string{"validate", "-f", down, "-probe", "-probe-timeout", "2s"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("probe of dead replica: err = %v, want unreachable", err)
	}
	if !strings.Contains(out.String(), "UNREACHABLE") {
		t.Fatalf("probe output missing UNREACHABLE line:\n%s", out.String())
	}
}

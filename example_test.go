package hypar_test

import (
	"fmt"

	hypar "repro"
)

// ExampleModelByName looks one of the paper's ten evaluation networks
// up by name.
func ExampleModelByName() {
	m, err := hypar.ModelByName("Lenet-c")
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Name, "has", m.NumWeighted(), "weighted layers")
	// Output: Lenet-c has 4 weighted layers
}

// ExampleRun plans and simulates one training step: the plan's per-layer
// strings read H1..H4 left to right (0 = data parallelism, 1 = model
// parallelism).
func ExampleRun() {
	m, err := hypar.ModelByName("Lenet-c")
	if err != nil {
		panic(err)
	}
	res, err := hypar.Run(m, hypar.HyPar, hypar.DefaultConfig())
	if err != nil {
		panic(err)
	}
	for l, layer := range m.Layers {
		fmt.Println(layer.Name, res.Plan.LayerString(l))
	}
	fmt.Println("simulated a step:", res.Stats.StepSeconds > 0)
	// Output:
	// conv1 0000
	// conv2 0000
	// fc1 1010
	// fc2 1010
	// simulated a step: true
}

// ExampleCompare runs every strategy on one network and reads the
// Figure 6 normalization: HyPar's speedup over Data Parallelism.
func ExampleCompare() {
	m, err := hypar.ModelByName("Lenet-c")
	if err != nil {
		panic(err)
	}
	cmp, err := hypar.Compare(m, hypar.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Println("strategies compared:", len(cmp.Results))
	fmt.Println("HyPar beats Data Parallelism:", cmp.PerformanceGain(hypar.HyPar) > 1)
	// Output:
	// strategies compared: 4
	// HyPar beats Data Parallelism: true
}

// ExampleConfig_platform selects a non-default accelerator platform:
// leaving Topology and LinkMbps zero resolves them to the platform's
// native fabric.
func ExampleConfig_platform() {
	cfg := hypar.Config{Batch: 256, Levels: 4, Platform: "gpu-hbm"}
	cfg = cfg.Canonical()
	fmt.Println(cfg.Platform, cfg.Topology, cfg.LinkMbps)

	m, err := hypar.ModelByName("Lenet-c")
	if err != nil {
		panic(err)
	}
	res, err := hypar.Run(m, hypar.HyPar, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("simulated on gpu-hbm:", res.Stats.StepSeconds > 0)
	// Output:
	// gpu-hbm torus 200000
	// simulated on gpu-hbm: true
}

// ExampleComparePlatforms contrasts the registered platforms on one
// network, each at its native interconnect.
func ExampleComparePlatforms() {
	m, err := hypar.ModelByName("Lenet-c")
	if err != nil {
		panic(err)
	}
	pc, err := hypar.ComparePlatforms(m, hypar.DefaultConfig())
	if err != nil {
		panic(err)
	}
	for _, name := range pc.Names {
		cmp := pc.ByPlatform[name]
		fmt.Println(name, "HyPar > DP:", cmp.PerformanceGain(hypar.HyPar) > 1)
	}
	// Output:
	// gpu-hbm HyPar > DP: true
	// hmc HyPar > DP: true
	// tpu-systolic HyPar > DP: true
}

// ExampleBranchedZoo plans a branched (DAG) workload: a residual
// network whose skip edges the graph partition search prices per edge.
func ExampleBranchedZoo() {
	m := hypar.BranchedZoo()[0] // SRES-8
	plan, err := hypar.NewPlan(m, hypar.HyPar, hypar.DefaultConfig())
	if err != nil {
		panic(err)
	}
	skips, err := m.SkipEdges()
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Name, "skip edges:", skips)
	fmt.Println("sink layer:", plan.LayerString(len(m.Layers)-1))
	// Output:
	// SRES-8 skip edges: 2
	// sink layer: 0001
}
